// Commit-lifecycle span layer (DESIGN.md §15): the lock-free SpanRing,
// the NDJSON codec, clock-offset reconciliation, the critical-path
// analyzer's chain stitching and telescoping coverage guarantee, the
// Chrome-trace export, the flight recorder, and the determinism pin
// (span recording must not perturb the seeded trace stream).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "obs/flight.h"
#include "obs/span.h"
#include "obs/trace.h"

namespace repro::obs {
namespace {

std::uint64_t as_aux(std::int64_t offset) {
  std::uint64_t aux = 0;
  std::memcpy(&aux, &offset, sizeof aux);
  return aux;
}

SpanEvent make(SpanStage stage, ReplicaId replica, std::uint64_t t,
               std::uint64_t key, std::uint64_t aux = 0,
               ReplicaId peer = kSpanNoPeer) {
  SpanEvent ev;
  ev.stage = stage;
  ev.replica = replica;
  ev.peer = peer;
  ev.t_us = t;
  ev.key = key;
  ev.aux = aux;
  return ev;
}

TEST(SpanRing, WraparoundKeepsNewestEvents) {
  SpanRing ring(8, /*wall_clock=*/false);
  ASSERT_TRUE(ring.enabled());
  EXPECT_FALSE(ring.wall_clock());
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.push(make(SpanStage::kCommit, 0, i, /*key=*/i));
  }
  EXPECT_EQ(ring.recorded(), 20u);
  EXPECT_EQ(ring.dropped(), 12u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].key, 12 + i) << "ring must retain the newest 8, oldest first";
  }
}

TEST(SpanRing, ZeroCapacityDisablesRecording) {
  SpanRing ring(0);
  EXPECT_FALSE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 0u);
  ring.push(SpanEvent{});
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(SpanRing, CapacityRoundsUpToPowerOfTwo) {
  SpanRing ring(100);
  EXPECT_EQ(ring.capacity(), 128u);
  EXPECT_GT(ring.approx_bytes(), 128 * sizeof(std::uint64_t) * 5);
}

/// Concurrent writers overwrite each other freely, but a reader must
/// never observe a torn slot: every snapshotted event carries the
/// writer's (key, aux) pair intact.
TEST(SpanRing, ConcurrentWritersNeverTearSlots) {
  SpanRing ring(1024, /*wall_clock=*/false);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPushes = 4000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPushes; ++i) {
        const std::uint64_t key = (static_cast<std::uint64_t>(t) << 32) | i;
        ring.push(make(SpanStage::kCommit, static_cast<ReplicaId>(t), i, key,
                       /*aux=*/key * 2 + 7));
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& w : writers) w.join();

  EXPECT_EQ(ring.recorded(), kThreads * kPushes);
  EXPECT_EQ(ring.dropped(), kThreads * kPushes - 1024);
  const auto events = ring.events();
  EXPECT_LE(events.size(), 1024u);
  EXPECT_GT(events.size(), 0u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.aux, ev.key * 2 + 7) << "torn slot leaked to a reader";
    EXPECT_EQ(ev.replica, ev.key >> 32);
    EXPECT_EQ(ev.t_us, ev.key & 0xFFFFFFFFull);
  }
}

TEST(SpanKey, DeterministicAndSensitiveToContentAndLength) {
  std::uint8_t a[120];
  for (std::size_t i = 0; i < sizeof a; ++i) a[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(span_key_of(a, sizeof a), span_key_of(a, sizeof a));

  std::uint8_t b[120];
  std::memcpy(b, a, sizeof a);
  b[10] ^= 0x5a;  // flip a byte inside the hashed 96-byte prefix
  EXPECT_NE(span_key_of(a, sizeof a), span_key_of(b, sizeof b));

  // Same 96-byte prefix, different total length: the folded-in size must
  // still split them (digest-referenced proposals share long prefixes).
  EXPECT_NE(span_key_of(a, 100), span_key_of(a, 120));
}

TEST(SpanNdjson, RoundTripsAndOmitsDefaultFields) {
  std::vector<SpanEvent> events;
  SpanEvent full;
  full.stage = SpanStage::kSendFlush;
  full.replica = 3;
  full.peer = 7;
  full.t_us = 123456;
  full.key = 0xdeadbeefcafe;
  full.view = 2;
  full.round = 9;
  full.aux = 41;
  events.push_back(full);
  // All-default optional fields: view/round/aux zero, no peer.
  events.push_back(make(SpanStage::kCommit, 1, 99, /*key=*/5));

  const std::string text = spans_to_ndjson(events);
  std::istringstream lines(text);
  std::string line1, line2;
  ASSERT_TRUE(std::getline(lines, line1));
  ASSERT_TRUE(std::getline(lines, line2));
  EXPECT_NE(line1.find("\"peer\":7"), std::string::npos);
  // Optional fields are omitted when default so seeded runs emit stable
  // bytes — not serialized as zeros.
  EXPECT_EQ(line2.find("\"view\""), std::string::npos);
  EXPECT_EQ(line2.find("\"round\""), std::string::npos);
  EXPECT_EQ(line2.find("\"aux\""), std::string::npos);
  EXPECT_EQ(line2.find("\"peer\""), std::string::npos);

  std::size_t bad = 0;
  const auto parsed = parse_spans_ndjson(text, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(parsed[i] == events[i]) << "event " << i;
  }
}

/// Mixed streams are the norm (forensics bundles concatenate rings):
/// trace events, meta lines, and blanks are not span lines and must be
/// skipped silently; only lines claiming to be spans can count as bad.
TEST(SpanNdjson, SkipsForeignLinesAndCountsBadSpans) {
  std::string text = spans_to_ndjson({make(SpanStage::kQcFormed, 0, 10, 42)});
  text += to_ndjson({TraceEvent{}});  // a trace line ("ev" field)
  text += trace_meta_line(TraceMeta{2, 5, 100});
  text += "\n";
  text += "{\"stage\":\"no_such_stage\",\"replica\":0,\"t_us\":1,\"key\":2}\n";
  text += "{\"stage\":\"commit\"}\n";  // claims to be a span, missing fields

  std::size_t bad = 0;
  const auto spans = parse_spans_ndjson(text, &bad);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].key, 42u);
  EXPECT_EQ(bad, 2u);

  // The trace parser makes the symmetric promise: span and meta lines in
  // its input are foreign, not malformed.
  std::size_t trace_bad = 0;
  const auto traces = parse_ndjson(text, &trace_bad);
  EXPECT_EQ(traces.size(), 1u);
  EXPECT_EQ(trace_bad, 0u);
}

TEST(SpanNdjson, StageNamesRoundTripEveryStage) {
  for (std::size_t i = 0; i < kSpanStageCount; ++i) {
    const auto stage = static_cast<SpanStage>(i);
    SpanStage back = SpanStage::kBatchAnnounce;
    ASSERT_TRUE(span_stage_from_name(span_stage_name(stage), &back));
    EXPECT_EQ(back, stage);
  }
  SpanStage unused;
  EXPECT_FALSE(span_stage_from_name("definitely_not_a_stage", &unused));
}

TEST(SpanSort, OrdersByTimeThenReplica) {
  std::vector<SpanEvent> events = {
      make(SpanStage::kCommit, 1, 50, 1),
      make(SpanStage::kCommit, 0, 50, 2),
      make(SpanStage::kVoteSend, 2, 10, 3),
  };
  sort_spans(events);
  EXPECT_EQ(events[0].t_us, 10u);
  EXPECT_EQ(events[1].replica, 0u);  // at t=50, replica 0 sorts first
  EXPECT_EQ(events[2].replica, 1u);
}

TEST(ClockOffsets, MapsEventsIntoTheReferenceClock) {
  // Replica 0 measured replica 1's clock as running 500us ahead. An event
  // stamped 1000 on replica 1's clock is 500 in replica 0's frame.
  std::vector<SpanEvent> events = {
      make(SpanStage::kClockOffset, 0, 0, /*key=peer*/ 1, as_aux(500)),
      make(SpanStage::kCommit, 1, 1000, 7),
      make(SpanStage::kCommit, 0, 600, 8),
  };
  EXPECT_EQ(apply_clock_offsets(events), 1u);
  EXPECT_EQ(events[1].t_us, 500u);
  EXPECT_EQ(events[2].t_us, 600u);  // reference replica untouched
}

TEST(ClockOffsets, BridgesTransitivelyThroughTheMeasurementGraph) {
  // 0 measured 1 at +100; 1 measured 2 at +250. Replica 2 is reachable
  // only through 1, so its events shift by 350 total. Negative results
  // clamp at zero instead of wrapping.
  std::vector<SpanEvent> events = {
      make(SpanStage::kClockOffset, 0, 0, 1, as_aux(100)),
      make(SpanStage::kClockOffset, 1, 0, 2, as_aux(250)),
      make(SpanStage::kCommit, 2, 1000, 7),
      make(SpanStage::kCommit, 2, 10, 8),
  };
  EXPECT_EQ(apply_clock_offsets(events), 2u);
  EXPECT_EQ(events[2].t_us, 650u);
  EXPECT_EQ(events[3].t_us, 0u);  // 10 - 350 clamps
}

/// One fully-instrumented block: the analyzer must pick the critical
/// voter (the latest vote at or before QC formation), stitch all eight
/// milestones, and account for every microsecond (coverage == 1).
TEST(Analyzer, StitchesAFullChainAndPicksTheCriticalVoter) {
  constexpr std::uint64_t kBlock = 0xb10c;
  constexpr std::uint64_t kPayload = 0x9a71;
  std::vector<SpanEvent> events;
  SpanEvent enc = make(SpanStage::kProposalEncode, 0, 100, kBlock, kPayload);
  enc.view = 1;
  enc.round = 3;
  events.push_back(enc);
  events.push_back(make(SpanStage::kSendFlush, 0, 110, kPayload, 0, /*peer=*/1));
  events.push_back(make(SpanStage::kSendFlush, 0, 112, kPayload, 0, /*peer=*/2));
  events.push_back(make(SpanStage::kSendFlush, 0, 114, kPayload, 0, /*peer=*/3));
  events.push_back(make(SpanStage::kSocketRead, 1, 120, kPayload, 0, /*peer=*/0));
  events.push_back(make(SpanStage::kSocketRead, 2, 122, kPayload, 0, /*peer=*/0));
  events.push_back(make(SpanStage::kVerifyDequeue, 2, 130, kPayload));
  events.push_back(make(SpanStage::kDispatch, 2, 140, kBlock));
  events.push_back(make(SpanStage::kVoteSend, 1, 150, kBlock));
  events.push_back(make(SpanStage::kVoteSend, 2, 160, kBlock));
  events.push_back(make(SpanStage::kVoteSend, 3, 170, kBlock));  // after the QC
  events.push_back(make(SpanStage::kQcFormed, 0, 165, kBlock));
  SpanEvent commit = make(SpanStage::kCommit, 0, 300, kBlock);
  commit.view = 1;
  commit.round = 3;
  events.push_back(commit);
  events.push_back(make(SpanStage::kClientConfirm, 1, 350, kBlock, /*aux=*/50));

  const SpanReport rep = analyze_spans(events);
  EXPECT_EQ(rep.commits_seen, 1u);
  ASSERT_EQ(rep.chains.size(), 1u);
  const SpanChain& c = rep.chains[0];
  EXPECT_EQ(c.key, kBlock);
  EXPECT_EQ(c.view, 1u);
  EXPECT_EQ(c.round, 3u);
  EXPECT_EQ(c.proposer, 0u);
  // Votes land at 150 (r1), 160 (r2), 170 (r3); the QC formed at 165, so
  // r2's vote is the one that completed it.
  EXPECT_EQ(c.critical, 2u);

  const std::uint64_t want_t[SpanChain::kMilestones] = {100, 112, 122, 130,
                                                        140, 160, 165, 300};
  for (std::size_t i = 0; i < SpanChain::kMilestones; ++i) {
    EXPECT_EQ(c.t[i], want_t[i]) << "milestone " << i;
  }
  const std::uint64_t want_stage[SpanChain::kMilestones - 1] = {12, 10, 8, 10,
                                                                20, 5,  135};
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i + 1 < SpanChain::kMilestones; ++i) {
    EXPECT_TRUE(c.stage_set[i]) << span_chain_stage_name(i);
    EXPECT_EQ(c.stage_us[i], want_stage[i]) << span_chain_stage_name(i);
    sum += c.stage_us[i];
  }
  EXPECT_EQ(c.total_us, 200u);
  EXPECT_EQ(sum, c.total_us);
  EXPECT_DOUBLE_EQ(c.coverage, 1.0);
  EXPECT_DOUBLE_EQ(rep.coverage_min, 1.0);

  // Steady-state block (height 0): samples land on the steady side.
  EXPECT_EQ(rep.total_steady.count, 1u);
  EXPECT_EQ(rep.total_fallback.count, 0u);
  EXPECT_EQ(rep.total_steady.p50_us, 200u);
  ASSERT_EQ(rep.commit_to_confirm.count, 1u);
  EXPECT_EQ(rep.commit_to_confirm.p50_us, 50u);

  const std::string text = rep.summary();
  EXPECT_NE(text.find("commit_rule"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);
}

/// Transport milestones missing entirely (the sim path, or a gappy ring):
/// stages telescope from the previous *present* milestone, so the stage
/// sum still covers the whole encode -> commit interval.
TEST(Analyzer, TelescopingCoversGapsFromMissingMilestones) {
  constexpr std::uint64_t kBlock = 0xabc;
  std::vector<SpanEvent> events;
  events.push_back(make(SpanStage::kProposalEncode, 0, 1000, kBlock, /*aux=*/777));
  events.push_back(make(SpanStage::kVoteSend, 1, 1400, kBlock));
  events.push_back(make(SpanStage::kQcFormed, 0, 1500, kBlock));
  SpanEvent commit = make(SpanStage::kCommit, 0, 2000, kBlock);
  commit.aux = 4;  // fallback height
  events.push_back(commit);

  const SpanReport rep = analyze_spans(events);
  ASSERT_EQ(rep.chains.size(), 1u);
  const SpanChain& c = rep.chains[0];
  EXPECT_EQ(c.height, 4u);
  EXPECT_FALSE(c.stage_set[0]);  // no flush
  EXPECT_FALSE(c.stage_set[1]);  // no read
  EXPECT_FALSE(c.stage_set[2]);  // no dequeue
  EXPECT_FALSE(c.stage_set[3]);  // no dispatch
  // vote_handler telescopes all the way back to the encode milestone.
  EXPECT_TRUE(c.stage_set[4]);
  EXPECT_EQ(c.stage_us[4], 400u);
  EXPECT_EQ(c.stage_us[5], 100u);
  EXPECT_EQ(c.stage_us[6], 500u);
  EXPECT_DOUBLE_EQ(c.coverage, 1.0);
  // Fallback block: samples land on the fallback side.
  EXPECT_EQ(rep.total_fallback.count, 1u);
  EXPECT_EQ(rep.total_steady.count, 0u);
}

TEST(Analyzer, CommitWithoutEncodeCountsButDoesNotChain) {
  const SpanReport rep =
      analyze_spans({make(SpanStage::kCommit, 0, 500, 0x1)});
  EXPECT_EQ(rep.commits_seen, 1u);
  EXPECT_TRUE(rep.chains.empty());
  EXPECT_NE(rep.summary().find("no critical-path chains"), std::string::npos);
}

TEST(ChromeTrace, EmitsOneDurationEventPerStagePlusCommitInstant) {
  constexpr std::uint64_t kBlock = 0xf00d;
  std::vector<SpanEvent> events;
  events.push_back(make(SpanStage::kProposalEncode, 0, 100, kBlock, /*aux=*/1));
  events.push_back(make(SpanStage::kVoteSend, 1, 200, kBlock));
  events.push_back(make(SpanStage::kQcFormed, 0, 250, kBlock));
  events.push_back(make(SpanStage::kCommit, 0, 400, kBlock));
  const std::string json = chrome_trace_json(analyze_spans(events));
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  std::size_t durations = 0, instants = 0, pos = 0;
  while ((pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++durations;
    pos += 8;
  }
  pos = 0;
  while ((pos = json.find("\"ph\":\"i\"", pos)) != std::string::npos) {
    ++instants;
    pos += 8;
  }
  EXPECT_EQ(durations, 3u);  // vote_handler, quorum, commit_rule present
  EXPECT_EQ(instants, 1u);   // the commit marker
  EXPECT_NE(json.find("\"name\":\"commit_rule\""), std::string::npos);
}

/// The §10 contract, extended to spans: recording spans must not perturb
/// the seeded trace stream the determinism pins hash. Same seed with
/// spans off vs on -> byte-identical trace NDJSON.
TEST(Determinism, SpanRecordingDoesNotPerturbSeededTraces) {
  auto run = [](std::size_t span_capacity) {
    harness::ExperimentConfig cfg;
    cfg.n = 4;
    cfg.protocol = harness::Protocol::kFallback3;
    cfg.scenario = harness::NetScenario::kAsynchronous;
    cfg.seed = 99;
    cfg.trace_capacity = 4096;
    cfg.span_capacity = span_capacity;
    harness::Experiment exp(cfg);
    exp.start();
    exp.run_until_commits(4, 30'000'000'000ull);
    return std::pair{exp.traces_ndjson(), exp.span_events().size()};
  };
  const auto [traces_off, spans_off] = run(0);
  const auto [traces_on, spans_on] = run(1 << 14);
  ASSERT_FALSE(traces_off.empty());
  EXPECT_EQ(traces_off, traces_on);
  EXPECT_EQ(spans_off, 0u);
  EXPECT_GT(spans_on, 0u);
}

/// End-to-end over the sim harness: a seeded run's span stream must
/// stitch one chain per commit with full telescoped coverage, and the
/// NDJSON writer/parser must round-trip it.
TEST(ExperimentSpans, SeededRunStitchesChainsWithFullCoverage) {
  harness::ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = harness::Protocol::kAlwaysFallback;
  cfg.scenario = harness::NetScenario::kSynchronous;
  cfg.seed = 3;
  cfg.span_capacity = 1 << 15;
  harness::Experiment exp(cfg);
  exp.start();
  exp.run_until_commits(6, 30'000'000'000ull);

  const auto events = exp.span_events();
  ASSERT_FALSE(events.empty());
  const SpanReport rep = analyze_spans(events);
  EXPECT_GE(rep.commits_seen, 6u);
  ASSERT_FALSE(rep.chains.empty());
  EXPECT_EQ(rep.chains.size(), rep.commits_seen)
      << "every sim commit must pair with its encode record";
  // Sim time is monotone and shared, so telescoping covers everything.
  EXPECT_GE(rep.coverage_min, 0.999);
  // Always-fallback commits exclusively through certified f-blocks.
  EXPECT_GT(rep.total_fallback.count, 0u);
  EXPECT_EQ(rep.total_steady.count, 0u);

  std::size_t bad = 0;
  const auto reparsed = parse_spans_ndjson(exp.spans_ndjson(), &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(reparsed.size(), events.size());
  EXPECT_TRUE(reparsed.front() == events.front());
  EXPECT_TRUE(reparsed.back() == events.back());
}

TEST(FlightRecorderTest, WritesBundlesWithMonotonicSequenceNumbers) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "flight_recorder_test";
  std::filesystem::remove_all(dir);

  FlightRecorder::Sources sources;
  sources.traces = [] { return std::string("{\"ev\":\"propose\"}\n"); };
  sources.spans = [] { return std::string("{\"stage\":\"commit\"}\n"); };
  // No metrics source: the recorder must skip that file, not fail.
  sources.manifest_extra = [] { return std::string(",\"n\":4"); };
  FlightRecorder rec(dir.string(), sources);
  EXPECT_EQ(rec.dumps(), 0u);

  const std::string first = rec.dump("stall");
  ASSERT_FALSE(first.empty());
  EXPECT_NE(first.find("stall-0"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(first) / "trace.ndjson"));
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(first) / "spans.ndjson"));
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(first) / "metrics.ndjson"));

  std::ifstream manifest(std::filesystem::path(first) / "manifest.json");
  std::stringstream body;
  body << manifest.rdbuf();
  EXPECT_NE(body.str().find("\"reason\":\"stall\""), std::string::npos);
  EXPECT_NE(body.str().find("\"seq\":0"), std::string::npos);
  EXPECT_NE(body.str().find("\"n\":4"), std::string::npos);

  const std::string second = rec.dump("admin");
  EXPECT_NE(second.find("admin-1"), std::string::npos);
  EXPECT_EQ(rec.dumps(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(TraceMetaLine, RoundTripsAndRejectsForeignLines) {
  const TraceMeta meta{3, 17, 4096};
  const std::string line = trace_meta_line(meta);
  EXPECT_EQ(line.back(), '\n');
  TraceMeta back;
  ASSERT_TRUE(parse_trace_meta_line(line, &back));
  EXPECT_EQ(back.replica, 3u);
  EXPECT_EQ(back.dropped, 17u);
  EXPECT_EQ(back.recorded, 4096u);
  EXPECT_FALSE(parse_trace_meta_line("{\"ev\":\"propose\"}", &back));
  EXPECT_FALSE(parse_trace_meta_line("", &back));
}

}  // namespace
}  // namespace repro::obs
