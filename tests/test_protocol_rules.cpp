// White-box assertions of the paper's Figure-2 rules, one by one: a
// single FallbackReplica is driven with handcrafted (correctly signed)
// messages, and we observe exactly what it sends. Where the other suites
// check emergent behaviour, these check the *letter* of each rule.
#include <gtest/gtest.h>

#include "core/fallback.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace repro::core {
namespace {

using smr::Block;
using smr::CertKind;
using smr::Certificate;
using smr::Message;

/// Rig: replica 0 is the unit under test; deliveries to replicas 1..3 are
/// captured for inspection.
struct Rig {
  sim::Simulation sim;
  std::shared_ptr<const crypto::CryptoSystem> crypto_sys;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<FallbackReplica> replica;
  /// Captured (to, from, decoded message) triples.
  std::vector<std::tuple<ReplicaId, ReplicaId, Message>> captured;

  explicit Rig(FallbackParams fb = {}, ProtocolConfig pcfg = {}) {
    crypto_sys = crypto::CryptoSystem::deal(QuorumParams::for_n(4), 777);
    net = std::make_unique<net::Network>(sim, 4, std::make_unique<net::FixedDelayModel>(1),
                                         Rng(1));
    ReplicaContext ctx;
    ctx.sim = &sim;
    ctx.net = net.get();
    ctx.crypto = crypto_sys;
    ctx.id = 0;
    ctx.config = pcfg;
    ctx.seed = 7;
    replica = std::make_unique<FallbackReplica>(ctx, fb);
    net->register_handler(0, [this](ReplicaId from, const Bytes& payload) {
      replica->on_message(from, payload);
    });
    for (ReplicaId id = 1; id < 4; ++id) {
      net->register_handler(id, [this, id](ReplicaId from, const Bytes& payload) {
        captured.emplace_back(id, from, *smr::decode_message(payload));
      });
    }
  }

  /// Deliver a message to the replica as if sent by `from`, then settle
  /// briefly. Settling is time-bounded (10 ms) so the replica's 400 ms
  /// round timer does NOT fire as a side effect of every injection.
  void inject(ReplicaId from, Message msg) {
    smr::sign_message(*crypto_sys, from, msg);
    net->send(from, 0, smr::encode_message(msg));
    settle();
  }

  void settle() { sim.run_until(sim.now() + 10'000); }

  template <typename T>
  std::vector<T> sent() const {
    std::vector<T> out;
    for (const auto& [to, from, msg] : captured) {
      if (const T* m = std::get_if<T>(&msg)) out.push_back(*m);
    }
    return out;
  }

  Certificate make_qc(const Block& b) const {
    std::vector<crypto::PartialSig> shares;
    const Bytes m = cert_signing_message(CertKind::kQuorum, b.id, b.round, b.view, 0, 0);
    for (ReplicaId i = 0; i < 3; ++i) shares.push_back(crypto_sys->quorum_sigs.sign_share(i, m));
    return *smr::combine_certificate(*crypto_sys, CertKind::kQuorum, b.id, b.round, b.view, 0,
                                     0, shares);
  }

  Certificate make_fqc(const Block& b) const {
    std::vector<crypto::PartialSig> shares;
    const Bytes m =
        cert_signing_message(CertKind::kFallback, b.id, b.round, b.view, b.height, b.proposer);
    for (ReplicaId i = 0; i < 3; ++i) shares.push_back(crypto_sys->quorum_sigs.sign_share(i, m));
    return *smr::combine_certificate(*crypto_sys, CertKind::kFallback, b.id, b.round, b.view,
                                     b.height, b.proposer, shares);
  }

  smr::FallbackTC make_ftc(View v) const {
    std::vector<crypto::PartialSig> shares;
    for (ReplicaId i = 0; i < 3; ++i) {
      shares.push_back(crypto_sys->quorum_sigs.sign_share(i, smr::ftc_signing_message(v)));
    }
    return *smr::combine_ftc(*crypto_sys, v, shares);
  }

  smr::FbTimeoutMsg timeout_from(ReplicaId i, View v) const {
    smr::FbTimeoutMsg m;
    m.view = v;
    m.view_share = crypto_sys->quorum_sigs.sign_share(i, smr::ftc_signing_message(v));
    m.qc_high = smr::genesis_certificate();
    return m;
  }
};

// ---- steady-state vote rule ---------------------------------------------------

TEST(VoteRule, VotesForValidRound1Proposal) {
  // Round 1's leader is replica 0 itself in the default schedule; use a
  // config with rotation 1 so round 2's leader is replica 1 and we can
  // inject an external proposal. First feed the round-1 QC via a
  // proposal... simplest: rotation=1, leader(1)=0 proposes itself at
  // start; we then inject leader(2)=1's proposal extending that QC.
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();  // replica 0 proposes round 1 and multicasts
  const auto proposals = rig.sent<smr::ProposalMsg>();
  ASSERT_FALSE(proposals.empty());
  const Block b1 = proposals.front().block;
  const Certificate qc1 = rig.make_qc(b1);

  smr::ProposalMsg p2;
  p2.block = Block::make(qc1, 2, 0, 0, /*proposer=*/1, Bytes{2});
  rig.captured.clear();
  rig.inject(1, p2);

  const auto votes = rig.sent<smr::VoteMsg>();
  ASSERT_EQ(votes.size(), 1u);  // voted exactly once
  EXPECT_EQ(votes[0].round, 2u);
  EXPECT_EQ(votes[0].block_id, p2.block.id);
  EXPECT_EQ(rig.replica->r_vote(), 2u);
}

TEST(VoteRule, RejectsRoundGapProposal) {
  // Fig 2 adds r == qc.r + 1: a proposal whose round skips ahead of its
  // parent QC must not be voted, even if everything else is valid.
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();
  const Block b1 = rig.sent<smr::ProposalMsg>().front().block;
  const Certificate qc1 = rig.make_qc(b1);

  smr::ProposalMsg gap;
  gap.block = Block::make(qc1, 3, 0, 0, /*proposer=*/2, Bytes{3});  // leader(3)=2, gap!
  rig.captured.clear();
  rig.inject(2, gap);
  EXPECT_TRUE(rig.sent<smr::VoteMsg>().empty());
}

TEST(VoteRule, RejectsWrongLeader) {
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();
  const Block b1 = rig.sent<smr::ProposalMsg>().front().block;
  const Certificate qc1 = rig.make_qc(b1);

  smr::ProposalMsg p2;
  p2.block = Block::make(qc1, 2, 0, 0, /*proposer=*/3, Bytes{2});  // leader(2)=1, not 3
  rig.captured.clear();
  rig.inject(3, p2);
  EXPECT_TRUE(rig.sent<smr::VoteMsg>().empty());
}

TEST(VoteRule, NeverVotesTwiceForTheSameRound) {
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();
  const Block b1 = rig.sent<smr::ProposalMsg>().front().block;
  const Certificate qc1 = rig.make_qc(b1);

  smr::ProposalMsg p2a, p2b;
  p2a.block = Block::make(qc1, 2, 0, 0, 1, Bytes{0xaa});
  p2b.block = Block::make(qc1, 2, 0, 0, 1, Bytes{0xbb});  // equivocation
  rig.captured.clear();
  rig.inject(1, p2a);
  rig.inject(1, p2b);
  EXPECT_EQ(rig.sent<smr::VoteMsg>().size(), 1u);  // r_vote blocks the second
}

// ---- timeout & Enter Fallback ---------------------------------------------------

TEST(EnterFallback, TimerExpiryMulticastsViewShareAndQcHigh) {
  Rig rig;
  rig.replica->start();
  rig.sim.run_until(500'000);  // base timeout 400 ms passes with no progress
  const auto timeouts = rig.sent<smr::FbTimeoutMsg>();
  ASSERT_FALSE(timeouts.empty());
  EXPECT_EQ(timeouts[0].view, 0u);  // share signs the *view*, not the round
  EXPECT_TRUE(rig.crypto_sys->quorum_sigs.verify_share(timeouts[0].view_share,
                                                       smr::ftc_signing_message(0)));
  EXPECT_TRUE(rig.replica->in_fallback());
}

TEST(EnterFallback, FtcTriggersHeight1FBlockWithFtcAttached) {
  Rig rig;
  rig.replica->start();
  // Deliver 3 timeout messages (quorum) from peers: replica 0 forms the
  // f-TC, enters the fallback and multicasts its height-1 f-block.
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  const auto fprops = rig.sent<smr::FbProposalMsg>();
  ASSERT_FALSE(fprops.empty());
  EXPECT_EQ(fprops[0].block.height, 1u);
  EXPECT_EQ(fprops[0].block.proposer, 0u);
  EXPECT_EQ(fprops[0].block.round, 1u);  // qc_high(genesis).round + 1
  ASSERT_TRUE(fprops[0].ftc.has_value());
  EXPECT_TRUE(verify_ftc(*rig.crypto_sys, *fprops[0].ftc));
  EXPECT_TRUE(rig.replica->in_fallback());
}

TEST(EnterFallback, StaleViewFtcIgnored) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  ASSERT_TRUE(rig.replica->in_fallback());
  const auto before = rig.sent<smr::FbProposalMsg>().size();
  // Re-delivering the same view's f-TC must not re-enter / re-propose.
  smr::FbProposalMsg carrier;
  carrier.block = Block::make(smr::genesis_certificate(), 1, 0, 1, 1, Bytes{1});
  carrier.ftc = rig.make_ftc(0);
  rig.inject(1, carrier);
  // (the carrier may earn a fallback *vote*, but no new h1 proposal)
  EXPECT_EQ(rig.sent<smr::FbProposalMsg>().size(), before);
}

// ---- Fallback Vote rules ---------------------------------------------------------

TEST(FallbackVote, VotesValidHeight1AndRecordsPerProposerState) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  rig.captured.clear();

  smr::FbProposalMsg h1;
  h1.block = Block::make(smr::genesis_certificate(), 1, 0, 1, /*proposer=*/2, Bytes{9});
  h1.ftc = rig.make_ftc(0);
  rig.inject(2, h1);

  const auto votes = rig.sent<smr::FbVoteMsg>();
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0].chain_owner, 2u);
  EXPECT_EQ(votes[0].height, 1u);
  // Vote goes back to the chain owner only.
  EXPECT_EQ(std::get<0>(rig.captured.back()), 2u);
}

TEST(FallbackVote, RefusesSecondHeight1FromSameProposer) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  rig.captured.clear();

  smr::FbProposalMsg a, b;
  a.block = Block::make(smr::genesis_certificate(), 1, 0, 1, 2, Bytes{0xaa});
  a.ftc = rig.make_ftc(0);
  b.block = Block::make(smr::genesis_certificate(), 1, 0, 1, 2, Bytes{0xbb});
  b.ftc = rig.make_ftc(0);
  rig.inject(2, a);
  rig.inject(2, b);  // h̄_vote[2] == 1 blocks this
  EXPECT_EQ(rig.sent<smr::FbVoteMsg>().size(), 1u);
}

TEST(FallbackVote, Height1WithoutFtcRejected) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  rig.captured.clear();

  smr::FbProposalMsg h1;
  h1.block = Block::make(smr::genesis_certificate(), 1, 0, 1, 2, Bytes{9});
  // no ftc attached
  rig.inject(2, h1);
  EXPECT_TRUE(rig.sent<smr::FbVoteMsg>().empty());
}

TEST(FallbackVote, Height2NeedsMatchingParentFqc) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));

  // Valid h1 by replica 2, certified; h2 extending it is votable...
  Block h1 = Block::make(smr::genesis_certificate(), 1, 0, 1, 2, Bytes{1});
  const Certificate fqc1 = rig.make_fqc(h1);
  rig.captured.clear();
  smr::FbProposalMsg h2;
  h2.block = Block::make(fqc1, 2, 0, 2, 2, Bytes{2});
  rig.inject(2, h2);
  EXPECT_EQ(rig.sent<smr::FbVoteMsg>().size(), 1u);

  // ...but an h3 whose height skips (parent is h1, not h2) is rejected.
  rig.captured.clear();
  smr::FbProposalMsg h3bad;
  h3bad.block = Block::make(fqc1, 2, 0, 3, 2, Bytes{3});
  rig.inject(2, h3bad);
  EXPECT_TRUE(rig.sent<smr::FbVoteMsg>().empty());
}

TEST(FallbackVote, NoVotesOutsideFallbackMode) {
  Rig rig;
  rig.replica->start();  // steady state, never timed out
  rig.captured.clear();
  smr::FbProposalMsg h1;
  h1.block = Block::make(smr::genesis_certificate(), 1, 0, 1, 2, Bytes{9});
  h1.ftc = rig.make_ftc(0);
  rig.inject(2, h1);
  // The attached f-TC pulls the replica INTO the fallback (Enter
  // Fallback triggers on any valid f-TC), after which it does vote — the
  // rule under test is the ordering: entry precedes any fallback vote.
  EXPECT_TRUE(rig.replica->in_fallback());
  EXPECT_EQ(rig.sent<smr::FbVoteMsg>().size(), 1u);
}

// ---- Exit Fallback ----------------------------------------------------------------

TEST(ExitFallback, CoinQcExitsAndAdvancesView) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  ASSERT_TRUE(rig.replica->in_fallback());

  std::vector<crypto::PartialSig> shares = {rig.crypto_sys->coin.coin_share(1, 0),
                                            rig.crypto_sys->coin.coin_share(2, 0)};
  const smr::CoinQC coin = *smr::combine_coin_qc(*rig.crypto_sys, 0, shares);
  rig.captured.clear();
  rig.inject(1, smr::CoinQcMsg{coin});

  EXPECT_FALSE(rig.replica->in_fallback());
  EXPECT_EQ(rig.replica->current_view(), 1u);
  // Exit Fallback forwards the coin-QC to everyone.
  EXPECT_FALSE(rig.sent<smr::CoinQcMsg>().empty());
}

// ---- verified-certificate cache (message hot path) ---------------------------

TEST(VerifierCacheRules, DuplicateCertificateDeliveryHitsCache) {
  // The fallback floods each replica with n copies of every QC (qc_high
  // rides on every fb-timeout): only the first copy may pay a full
  // threshold verification.
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();
  const auto proposals = rig.sent<smr::ProposalMsg>();
  ASSERT_FALSE(proposals.empty());
  const Certificate qc1 = rig.make_qc(proposals.front().block);

  auto timeout_with_qc = [&](ReplicaId i) {
    smr::FbTimeoutMsg m = rig.timeout_from(i, 1);
    m.qc_high = qc1;
    return m;
  };
  rig.inject(1, timeout_with_qc(1));
  EXPECT_EQ(rig.replica->stats().cert_verify_misses, 1u);
  EXPECT_EQ(rig.replica->stats().cert_verify_hits, 0u);
  rig.inject(2, timeout_with_qc(2));
  rig.inject(3, timeout_with_qc(3));
  EXPECT_EQ(rig.replica->stats().cert_verify_misses, 1u);  // still one full verify
  EXPECT_GE(rig.replica->stats().cert_verify_hits, 2u);
}

TEST(VerifierCacheRules, CacheStaysBoundedUnderDistinctCertFlood) {
  // A Byzantine peer streaming never-repeating (valid) certificates must
  // not grow the replica's cache past its configured capacity.
  ProtocolConfig pcfg;
  pcfg.leader_rotation = 1;
  pcfg.cert_cache_capacity = 4;
  Rig rig({}, pcfg);
  rig.replica->start();
  rig.settle();

  for (std::uint8_t i = 0; i < 12; ++i) {
    const Block b = Block::make(smr::genesis_certificate(), 1, 0, 0, 0, Bytes{i});
    smr::FbTimeoutMsg m = rig.timeout_from(1, 1);
    m.qc_high = rig.make_qc(b);  // distinct block id -> distinct cache key
    rig.inject(1, m);
  }
  EXPECT_EQ(rig.replica->cert_cache_capacity(), 4u);
  EXPECT_LE(rig.replica->cert_cache_size(), 4u);
  EXPECT_GE(rig.replica->stats().cert_verify_misses, 12u);
}

// ---- coin-share view horizon --------------------------------------------------

TEST(CoinShareHorizon, FarFutureSharesAreRejected) {
  // coin_quorum = f+1 = 2 for n=4: two Byzantine shares for a far-future
  // view would otherwise combine into a coin-QC (stuffing coin_shares_,
  // which prune_stale_pools never drops because it only prunes the past).
  Rig rig;
  rig.replica->start();
  for (ReplicaId i : {1u, 2u}) {
    smr::CoinShareMsg m;
    m.view = 50;  // far beyond v_cur (0) + kCoinViewHorizon (8)
    m.share = rig.crypto_sys->coin.coin_share(i, 50);
    rig.inject(i, m);
  }
  EXPECT_EQ(rig.replica->coins().count(50), 0u);
  EXPECT_TRUE(rig.sent<smr::CoinQcMsg>().empty());
  EXPECT_EQ(rig.replica->current_view(), 0u);
}

TEST(CoinShareHorizon, SharesAtTheHorizonStillCombine) {
  // The horizon is inclusive: view v_cur + kCoinViewHorizon is accepted,
  // so the check cannot strand a replica lagging a few views behind.
  Rig rig;
  rig.replica->start();
  const View v = FallbackReplica::kCoinViewHorizon;  // v_cur == 0
  for (ReplicaId i : {1u, 2u}) {
    smr::CoinShareMsg m;
    m.view = v;
    m.share = rig.crypto_sys->coin.coin_share(i, v);
    rig.inject(i, m);
  }
  EXPECT_EQ(rig.replica->coins().count(v), 1u);
  EXPECT_FALSE(rig.sent<smr::CoinQcMsg>().empty());
}

TEST(ExitFallback, StaleCoinDoesNotRegressView) {
  Rig rig;
  rig.replica->start();
  for (ReplicaId i = 1; i <= 3; ++i) rig.inject(i, rig.timeout_from(i, 0));
  std::vector<crypto::PartialSig> shares = {rig.crypto_sys->coin.coin_share(1, 0),
                                            rig.crypto_sys->coin.coin_share(2, 0)};
  const smr::CoinQC coin0 = *smr::combine_coin_qc(*rig.crypto_sys, 0, shares);
  rig.inject(1, smr::CoinQcMsg{coin0});
  ASSERT_EQ(rig.replica->current_view(), 1u);
  rig.inject(2, smr::CoinQcMsg{coin0});  // replay of the old view's coin
  EXPECT_EQ(rig.replica->current_view(), 1u);
  EXPECT_FALSE(rig.replica->in_fallback());
}

}  // namespace
}  // namespace repro::core
