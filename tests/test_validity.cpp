// External validity (paper §2, validated BFT SMR): with a predicate
// installed, honest replicas never vote for — and therefore never commit —
// a block whose batch fails it, while liveness continues around the
// invalid proposer.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace repro::harness {
namespace {

/// Test predicate: batches must not start with 0xFF (the convention the
/// kInvalidTxns fault injector uses).
bool no_ff_prefix(BytesView payload) {
  return payload.empty() || payload[0] != 0xFF;
}

ExperimentConfig validity_config(Protocol p, std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.n = 4;
  cfg.protocol = p;
  cfg.seed = seed;
  cfg.pcfg.batch_bytes = 32;
  cfg.pcfg.external_validator = no_ff_prefix;
  return cfg;
}

void expect_all_committed_valid(Experiment& exp) {
  for (ReplicaId id = 0; id < exp.n(); ++id) {
    if (!exp.is_honest(id)) continue;
    const auto& base = dynamic_cast<const core::ReplicaBase&>(exp.replica(id));
    for (const auto& rec : exp.replica(id).ledger().records()) {
      const smr::Block* b = base.store().get(rec.id);
      ASSERT_NE(b, nullptr);
      EXPECT_TRUE(no_ff_prefix(b->payload)) << "invalid batch committed!";
    }
  }
}

TEST(ExternalValidity, HonestRunsAreUnaffected) {
  Experiment exp(validity_config(Protocol::kFallback3, 1));
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(30, 120'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  expect_all_committed_valid(exp);
}

TEST(ExternalValidity, InvalidProposerNeverGetsCommitted) {
  auto cfg = validity_config(Protocol::kFallback3, 2);
  cfg.faults[1] = core::FaultKind::kInvalidTxns;
  Experiment exp(cfg);
  exp.start();
  // The invalid proposer's rounds time out (nobody votes), pushing the
  // system through fallbacks, but it keeps committing valid blocks.
  ASSERT_TRUE(exp.run_until_commits(20, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  expect_all_committed_valid(exp);
  // And none of the committed blocks were proposed by the faulty replica
  // in the steady state (its fallback chains can win the coin, but even
  // those blocks carry the 0xFF prefix and are thus never voted).
  std::uint64_t fallbacks = 0;
  for (ReplicaId id = 0; id < 4; ++id) {
    if (exp.is_honest(id)) fallbacks += exp.replica(id).stats().fallbacks_entered;
  }
  EXPECT_GT(fallbacks, 0u);  // the invalid leader forced view changes
}

TEST(ExternalValidity, DiemBftRejectsInvalidBatchesToo) {
  auto cfg = validity_config(Protocol::kDiemBft, 3);
  cfg.faults[2] = core::FaultKind::kInvalidTxns;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(20, 600'000'000));
  EXPECT_TRUE(exp.check_safety().ok);
  expect_all_committed_valid(exp);
}

TEST(ExternalValidity, FallbackChainsAlsoChecked) {
  // Under asynchrony everything commits through fallback chains; the
  // predicate must hold there as well (Fallback Vote checks it).
  auto cfg = validity_config(Protocol::kFallback3, 4);
  cfg.scenario = NetScenario::kAsynchronous;
  cfg.faults[3] = core::FaultKind::kInvalidTxns;
  Experiment exp(cfg);
  exp.start();
  ASSERT_TRUE(exp.run_until_commits(4, 8'000'000'000ull));
  EXPECT_TRUE(exp.check_safety().ok);
  expect_all_committed_valid(exp);
}

}  // namespace
}  // namespace repro::harness
